/**
 * @file
 * Design-space exploration demo (Section 8 future work made real):
 * for each benchmark, the explorer sweeps the template parameters,
 * prunes designs that do not fit the Stratix V with the resource
 * model, simulates the survivors, and reports the chosen
 * configuration against the hand-picked default — with the greedy
 * strategy's evaluation savings alongside.
 */

#include <cstdio>

#include "bench_common.hh"
#include "dse/explorer.hh"
#include "support/str.hh"

using namespace apir;
using namespace apir::bench;

namespace {

/** Build a DSE runner evaluating one benchmark on the workloads. */
DseRunner
runnerFor(Bench b, const Workloads &w)
{
    return [b, &w](const AccelConfig &cfg) {
        AccelRun run = runAccelerator(b, w, cfg, false);
        return std::make_pair(run.seconds, run.rr.utilization);
    };
}

/** The spec is only needed for resource pruning; build it once. */
AcceleratorSpec
specFor(Bench b, const Workloads &w, MemorySystem &mem)
{
    switch (b) {
      case Bench::SpecBfs:  return buildSpecBfs(w.road, 0, mem).spec;
      case Bench::CoorBfs:  return buildCoorBfs(w.road, 0, mem).spec;
      case Bench::SpecSssp: return buildSpecSssp(w.road, 0, mem).spec;
      case Bench::SpecMst:  return buildSpecMst(w.road, mem).spec;
      case Bench::SpecDmr: {
        RefineParams params;
        Mesh mesh = randomDelaunayMesh(64, 1);
        return buildSpecDmr(std::move(mesh), params, mem).spec;
      }
      case Bench::CoorLu: {
        BlockSparseMatrix a = randomBlockSparse(4, 8, 0.4, 1);
        return buildCoorLu(std::move(a), mem).spec;
      }
    }
    fatal("unknown benchmark");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    requireNoCheckpoint(opt, "dse_explore");
    // DSE multiplies simulator runs; use a quarter-scale workload.
    Workloads w = makeWorkloads(0.25 * opt.scale);

    std::printf("=== Design-space exploration (future-work extension) "
                "===\n\n");
    TextTable table({"benchmark", "default(s)", "best(s)", "gain",
                     "chosen config", "evals(greedy)", "pruned"});

    DseOptions options;
    options.greedy = true;
    options.pipelinesPerSet = {1, 2, 4, 8};
    options.ruleLanes = {8, 16, 32, 64};
    options.queueBanks = {1, 2, 4};
    options.lsuEntries = {4, 8, 16};
    options.threads = opt.threads; // 0 = hardware concurrency

    // The six hand-picked baselines are themselves an independent
    // sweep; fan them out before the per-benchmark explorations.
    std::vector<SweepJob> baseJobs;
    for (Bench b : kAllBenches)
        baseJobs.push_back({b, defaultAccelConfig(opt), false, {}});
    std::vector<AccelRun> defaults = runSweep(baseJobs, w, opt.threads);

    size_t next = 0;
    for (Bench b : kAllBenches) {
        MemorySystem scratch;
        AcceleratorSpec spec = specFor(b, w, scratch);
        AccelConfig base = defaultAccelConfig(opt);
        const AccelRun &dflt = defaults[next++];

        DseResult res =
            exploreDesignSpace(spec, base, runnerFor(b, w), options);
        const DsePoint &best = res.best();

        table.addRow(
            {benchName(b), strprintf("%.4f", dflt.seconds),
             strprintf("%.4f", best.seconds),
             strprintf("%.2fx", dflt.seconds / best.seconds),
             describeConfig(best.cfg),
             strprintf("%u", res.evaluations),
             strprintf("%u", res.pruned)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("the explorer prunes with the resource model, simulates "
                "survivors, and\npicks the fastest design that fits the "
                "device.\n");
    return 0;
}
