/**
 * @file
 * Section 6.2 (structure of accelerators): estimated FPGA resources
 * of each generated design on a Stratix V-class device, with the
 * rule engine's share of registers highlighted.
 *
 * Paper result: depending on the application the rule engine takes
 * 4.8-10% of total registers (mostly allocator and event bus);
 * BRAMs and combinational logic are negligible next to the task
 * pipelines. Pipelines are replicated by the paper's heuristic until
 * the device is full.
 */

#include <cstdio>

#include "bench_common.hh"
#include "resource/resource.hh"
#include "support/str.hh"

using namespace apir;
using namespace apir::bench;

namespace {

AcceleratorSpec
buildSpecFor(Bench b, const Workloads &w, MemorySystem &mem)
{
    switch (b) {
      case Bench::SpecBfs:  return buildSpecBfs(w.road, 0, mem).spec;
      case Bench::CoorBfs:  return buildCoorBfs(w.road, 0, mem).spec;
      case Bench::SpecSssp: return buildSpecSssp(w.road, 0, mem).spec;
      case Bench::SpecMst:  return buildSpecMst(w.road, mem).spec;
      case Bench::SpecDmr: {
        RefineParams params;
        Mesh mesh = randomDelaunayMesh(w.meshPoints, 42);
        return buildSpecDmr(std::move(mesh), params, mem).spec;
      }
      case Bench::CoorLu: {
        BlockSparseMatrix a = randomBlockSparse(
            w.luBlocks, w.luBlockSize, w.luDensity, 42);
        return buildCoorLu(std::move(a), mem).spec;
      }
    }
    fatal("unknown benchmark");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    Options opt = parseOptions(argc, argv);
    requireNoCheckpoint(opt, "table2_resources");
    Workloads w = makeWorkloads(opt.scale);
    DeviceLimits dev;

    std::printf("=== Section 6.2: structure and resources of generated "
                "accelerators (Stratix V 5SGXEA7) ===\n\n");
    TextTable table({"benchmark", "pipes/set", "regs", "alms",
                     "bram(Mb)", "fill", "rule-engine regs",
                     "rule share"});

    double min_share = 1.0, max_share = 0.0;
    for (Bench b : kAllBenches) {
        MemorySystem mem;
        AcceleratorSpec spec = buildSpecFor(b, w, mem);
        AccelConfig cfg = defaultAccelConfig(opt);
        cfg.pipelinesPerSet = fitPipelinesToDevice(spec, cfg, dev);
        ResourceReport rep = estimateResources(spec, cfg);
        double share = rep.ruleEngineRegisterShare();
        min_share = std::min(min_share, share);
        max_share = std::max(max_share, share);
        Resources t = rep.total();
        table.addRow(
            {benchName(b), strprintf("%u", cfg.pipelinesPerSet),
             humanCount(static_cast<double>(t.registers)),
             humanCount(static_cast<double>(t.alms)),
             strprintf("%.1f", t.bramBits / 1e6),
             strprintf("%.0f%%", 100.0 * rep.deviceRegisterFill(dev)),
             humanCount(static_cast<double>(rep.ruleEngines.registers)),
             strprintf("%.1f%%", 100.0 * share)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("measured rule-engine register share: %.1f%%-%.1f%%\n",
                100.0 * min_share, 100.0 * max_share);
    std::printf("paper:    4.8%%-10%% of registers, BRAM/logic "
                "negligible\n");
    return 0;
}
