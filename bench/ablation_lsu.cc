/**
 * @file
 * Ablation A (Section 5.2 design choice): out-of-order load/store
 * units vs in-order. The paper adopts dynamic-dataflow reordering so
 * blocked tasks can be bypassed during cache misses; this bench
 * quantifies that choice on the memory-bound graph benchmarks.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/str.hh"

using namespace apir;
using namespace apir::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    requireNoCheckpoint(opt, "ablation_lsu");
    Workloads w = makeWorkloads(opt.scale);

    std::printf("=== Ablation A: out-of-order vs in-order load/store "
                "units ===\n\n");
    TextTable table({"benchmark", "ooo(s)", "in-order(s)", "ooo speedup",
                     "ooo util", "in-order util"});
    JsonValue runs = JsonValue::array();
    std::vector<SweepJob> jobs;
    for (Bench b : kAllBenches) {
        AccelConfig ooo = defaultAccelConfig(opt);
        ooo.lsuInOrder = false;
        jobs.push_back({b, ooo, false, {}});

        AccelConfig ino = defaultAccelConfig(opt);
        ino.lsuInOrder = true;
        jobs.push_back({b, ino, false, {}});
    }
    std::vector<AccelRun> sweep = runSweep(jobs, w, opt.threads);

    size_t next = 0;
    for (Bench b : kAllBenches) {
        const AccelRun &r_ooo = sweep[next++];
        const AccelRun &r_ino = sweep[next++];

        table.addRow({benchName(b), strprintf("%.4f", r_ooo.seconds),
                      strprintf("%.4f", r_ino.seconds),
                      strprintf("%.2fx", r_ino.seconds / r_ooo.seconds),
                      strprintf("%.3f", r_ooo.rr.utilization),
                      strprintf("%.3f", r_ino.rr.utilization)});
        for (const auto &[run, in_order] :
             {std::pair<const AccelRun *, bool>{&r_ooo, false},
              std::pair<const AccelRun *, bool>{&r_ino, true}}) {
            JsonValue j = runToJson(*run);
            j.set("benchmark", JsonValue::str(benchName(b)));
            j.set("lsu_in_order", JsonValue::boolean(in_order));
            runs.push(std::move(j));
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expectation: OoO completion bypasses cache-missing "
                "tasks, so the\nmemory-bound benchmarks gain the "
                "most.\n");
    maybeWriteStatsJson(opt, "ablation_lsu", runs);
    return 0;
}
