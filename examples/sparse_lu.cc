/**
 * @file
 * Sparse-LU scenario: coordinative blocked LU factorization on the
 * simulated accelerator, verified against the sequential kernel, with
 * fill-in statistics and the estimated FPGA resources of the design.
 */

#include <cstdio>

#include "apps/lu.hh"
#include "hw/accelerator.hh"
#include "resource/resource.hh"
#include "support/logging.hh"
#include "support/str.hh"

using namespace apir;

int
main()
{
    setQuietLogging(true);
    const uint32_t n = 16, bs = 16;
    BlockSparseMatrix a = randomBlockSparse(n, bs, 0.25, 9);
    size_t nnz_before = a.numBlocks();
    std::printf("block-sparse matrix: %ux%u blocks of %ux%u, %zu stored "
                "blocks (%.0f%% dense)\n",
                n, n, bs, bs, nnz_before,
                100.0 * static_cast<double>(nnz_before) / (n * n));

    // Sequential reference.
    BlockSparseMatrix ref = a;
    LuOpCounts ref_ops = sparseLuSequential(ref);

    // Accelerator run (host pushes tasks incrementally).
    MemorySystem mem;
    auto app = buildCoorLu(std::move(a), mem);
    AccelConfig cfg;
    cfg.pipelinesPerSet = 4;
    cfg.hostBatch = 8;
    cfg.hostInterval = 64;
    Accelerator accel(app.spec, cfg, mem);
    RunResult rr = accel.run();

    const LuOpCounts &ops = app.state->ops;
    std::printf("\nblock operations: %llu factor, %llu trsm, %llu gemm "
                "(sequential did %llu total)\n",
                static_cast<unsigned long long>(ops.factor),
                static_cast<unsigned long long>(ops.trsm),
                static_cast<unsigned long long>(ops.gemm),
                static_cast<unsigned long long>(ref_ops.total()));
    APIR_ASSERT(ops.total() == ref_ops.total(), "operation count differs");
    double err = app.state->a.maxDiff(ref);
    APIR_ASSERT(err < 1e-9, "factorization differs from reference");
    std::printf("fill-in: %zu -> %zu stored blocks\n", nnz_before,
                app.state->a.numBlocks());
    std::printf("max |difference| vs sequential factors: %.2e\n", err);
    std::printf("accelerator: %llu cycles (%.1f us), utilization "
                "%.1f%%\n",
                static_cast<unsigned long long>(rr.cycles),
                rr.seconds * 1e6, 100.0 * rr.utilization);

    // What would this design cost on the paper's Stratix V?
    ResourceReport rep = estimateResources(app.spec, cfg);
    Resources t = rep.total();
    std::printf("\nestimated FPGA resources (%u pipelines/set): %s regs, "
                "%s ALMs, %.1f Mb BRAM\n",
                cfg.pipelinesPerSet,
                humanCount(static_cast<double>(t.registers)).c_str(),
                humanCount(static_cast<double>(t.alms)).c_str(),
                t.bramBits / 1e6);
    std::printf("rule engine share of registers: %.1f%% (paper: "
                "4.8-10%%)\n",
                100.0 * rep.ruleEngineRegisterShare());
    return 0;
}
