/**
 * @file
 * Ordered-vs-unordered scenario: the same SPEC-SSSP specification
 * synthesized with three scheduling policies (pure speculative
 * Bellman-Ford, delta-stepping-style buckets, strict distance order),
 * run on identical hardware. This is the trade-off of Hassaan et
 * al. [21] that the paper's Section 6.3 flooding observation points
 * at: more order means less wasted speculation but less parallelism.
 */

#include <cstdio>

#include "apps/sssp.hh"
#include "graph/generators.hh"
#include "hw/accelerator.hh"
#include "support/logging.hh"
#include "support/str.hh"

using namespace apir;

int
main()
{
    setQuietLogging(true);
    CsrGraph g = roadNetwork(48, 48, 0.08, 0.05, 1000, 42);
    auto ref = ssspSequential(g, 0);
    std::printf("road network: %u vertices, %llu arcs\n\n",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));

    struct Policy
    {
        const char *name;
        SsspOrdering ordering;
    };
    const Policy policies[] = {
        {"unordered (Bellman-Ford)", SsspOrdering::Unordered},
        {"bucketed (delta-stepping)", SsspOrdering::Bucketed},
        {"strict (Dijkstra-like)", SsspOrdering::Strict},
    };

    TextTable table({"policy", "cycles", "tasks", "squashed",
                     "utilization", "time(us)"});
    for (const Policy &p : policies) {
        MemorySystem mem;
        auto app = buildSpecSssp(g, 0, mem, p.ordering);
        AccelConfig cfg;
        cfg.pipelinesPerSet = 4;
        Accelerator accel(app.spec, cfg, mem);
        RunResult rr = accel.run();
        APIR_ASSERT(readDistances(app.img, mem) == ref,
                    "policy produced wrong distances");
        table.addRow(
            {p.name,
             strprintf("%llu",
                       static_cast<unsigned long long>(rr.cycles)),
             strprintf("%llu", static_cast<unsigned long long>(
                                   rr.tasksExecuted)),
             strprintf("%llu",
                       static_cast<unsigned long long>(rr.squashed)),
             strprintf("%.1f%%", 100.0 * rr.utilization),
             strprintf("%.1f", rr.seconds * 1e6)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("all three policies verified against Dijkstra. More "
                "order = fewer wasted\nrelaxations; less order = more "
                "tokens in flight. The framework expresses the\nwhole "
                "spectrum with one enum (a heap task queue plus an "
                "order key).\n");
    return 0;
}
