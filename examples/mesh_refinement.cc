/**
 * @file
 * Mesh-refinement scenario: Delaunay mesh refinement on the
 * simulated accelerator, with host-fed tasks (the paper's SPEC-DMR
 * setup) and before/after quality statistics.
 */

#include <cmath>
#include <cstdio>

#include "apps/dmr.hh"
#include "hw/accelerator.hh"
#include "support/logging.hh"

using namespace apir;

namespace {

/** Minimum-angle histogram of a mesh, in 10-degree buckets. */
void
printAngleHistogram(const Mesh &mesh, const char *label)
{
    uint32_t buckets[9] = {0};
    for (TriId t = 0; t < mesh.triangles().size(); ++t) {
        if (!mesh.alive(t))
            continue;
        const Triangle &tri = mesh.triangle(t);
        double deg = minAngle(mesh.point(tri.v[0]), mesh.point(tri.v[1]),
                              mesh.point(tri.v[2])) *
                     180.0 / M_PI;
        int b = std::min(8, static_cast<int>(deg / 10.0));
        ++buckets[b];
    }
    std::printf("%s min-angle histogram (10-degree buckets):\n  ", label);
    for (int b = 0; b < 9; ++b)
        std::printf("%d-%d:%u  ", b * 10, b * 10 + 10, buckets[b]);
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuietLogging(true);
    RefineParams params; // ~26-degree quality bound

    Mesh mesh = randomDelaunayMesh(800, 17);
    mesh.checkConsistency();
    auto initial_bad =
        findBadTriangles(mesh, params.minAngleRad, params.minArea);
    std::printf("input mesh: %u triangles, %zu bad (min angle < %.0f "
                "degrees)\n",
                mesh.numAliveTriangles(), initial_bad.size(),
                params.minAngleRad * 180.0 / M_PI);
    printAngleHistogram(mesh, "before");

    MemorySystem mem;
    auto app = buildSpecDmr(std::move(mesh), params, mem);

    AccelConfig cfg;
    cfg.pipelinesPerSet = 4;
    cfg.hostBatch = 16; // bad triangles pushed incrementally from host
    cfg.hostInterval = 64;
    Accelerator accel(app.spec, cfg, mem);
    RunResult rr = accel.run();

    const Mesh &refined = app.state->mesh;
    refined.checkConsistency();
    DmrResult res = summarizeMesh(refined, params, app.state->applied);
    APIR_ASSERT(res.remainingBad == 0, "refinement left bad triangles");

    std::printf("\nrefined on the accelerator in %llu cycles (%.1f us): "
                "%llu cavity retriangulations,\n%llu speculative "
                "squashes, final mesh %u triangles\n",
                static_cast<unsigned long long>(rr.cycles),
                rr.seconds * 1e6,
                static_cast<unsigned long long>(res.refinements),
                static_cast<unsigned long long>(rr.squashed),
                res.aliveTriangles);
    printAngleHistogram(refined, "after");
    std::printf("\nno refinable bad triangles remain (boundary triangles whose\ncircumcenter falls outside the domain are protected); mesh is "
                "consistent.\n");
    return 0;
}
