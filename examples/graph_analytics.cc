/**
 * @file
 * Graph-analytics scenario: run the SPEC-BFS, COOR-BFS, and SPEC-SSSP
 * accelerators over one road network, verify them against CPU
 * references, compare their schedules, and export one pipeline as
 * Graphviz (build/visit_pipeline.dot) for inspection.
 */

#include <cstdio>
#include <fstream>

#include "apps/bfs.hh"
#include "apps/sssp.hh"
#include "compile/accel_spec.hh"
#include "graph/generators.hh"
#include "hw/accelerator.hh"
#include "support/logging.hh"
#include "support/str.hh"

using namespace apir;

namespace {

struct Row
{
    const char *name;
    RunResult rr;
};

} // namespace

int
main()
{
    setQuietLogging(true);
    CsrGraph g = roadNetwork(48, 48, 0.08, 0.05, 1000, 42);
    std::printf("road network: %u vertices, %llu arcs, ",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));
    auto ref_levels = bfsSequential(g, 0);
    uint32_t depth = 0;
    for (uint32_t l : ref_levels)
        if (l != kInfDistance)
            depth = std::max(depth, l);
    std::printf("%u BFS levels\n\n", depth);

    AccelConfig cfg;
    cfg.pipelinesPerSet = 4;
    std::vector<Row> rows;

    {
        MemorySystem mem;
        auto app = buildSpecBfs(g, 0, mem);
        // Export the Visit pipeline's dataflow graph.
        std::ofstream dot("visit_pipeline.dot");
        dot << app.spec.pipelines[0].toDot();
        Accelerator accel(app.spec, cfg, mem);
        rows.push_back({"SPEC-BFS", accel.run()});
        APIR_ASSERT(readLevels(app.img, mem) == ref_levels,
                    "SPEC-BFS wrong");
    }
    {
        MemorySystem mem;
        auto app = buildCoorBfs(g, 0, mem);
        Accelerator accel(app.spec, cfg, mem);
        rows.push_back({"COOR-BFS", accel.run()});
        APIR_ASSERT(readLevels(app.img, mem) == ref_levels,
                    "COOR-BFS wrong");
    }
    {
        MemorySystem mem;
        auto app = buildSpecSssp(g, 0, mem);
        Accelerator accel(app.spec, cfg, mem);
        rows.push_back({"SPEC-SSSP", accel.run()});
        APIR_ASSERT(readDistances(app.img, mem) == ssspSequential(g, 0),
                    "SPEC-SSSP wrong");
    }

    TextTable table({"design", "cycles", "time(us)", "tasks", "squashed",
                     "utilization"});
    for (const Row &r : rows) {
        table.addRow(
            {r.name,
             strprintf("%llu",
                       static_cast<unsigned long long>(r.rr.cycles)),
             strprintf("%.1f", r.rr.seconds * 1e6),
             strprintf("%llu", static_cast<unsigned long long>(
                                   r.rr.tasksExecuted)),
             strprintf("%llu",
                       static_cast<unsigned long long>(r.rr.squashed)),
             strprintf("%.1f%%", 100.0 * r.rr.utilization)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("all results verified against CPU references.\n");
    std::printf("the Visit pipeline BDFG was written to "
                "visit_pipeline.dot\n");
    return 0;
}
