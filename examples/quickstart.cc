/**
 * @file
 * Quickstart: express an irregular application (BFS) in the apir
 * abstraction, debug it on the pure-software runtimes, then
 * synthesize and run it on the simulated CPU+FPGA platform.
 *
 * This walks the full Figure 4 flow:
 *   specification (tasks + rules)  ->  software runtimes (debug)
 *   dataflow pipelines (BDFG)      ->  accelerator templates (run)
 */

#include <cstdio>

#include "apps/bfs.hh"
#include "core/parallel_executor.hh"
#include "core/seq_executor.hh"
#include "core/threaded_runtime.hh"
#include "graph/generators.hh"
#include "hw/accelerator.hh"
#include "support/logging.hh"

using namespace apir;

int
main()
{
    // ------------------------------------------------------------ input
    // A small road-network-like graph: low degree, many BFS levels.
    CsrGraph g = roadNetwork(16, 24, 0.08, 0.05, 100, 7);
    std::printf("graph: %u vertices, %llu arcs\n", g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));

    // ------------------------------------------- 1. specify (Section 4)
    // The speculative-BFS specification: a for-each Visit set, a
    // for-all Update set, and a rule that squashes an Update when an
    // earlier task commits an at-least-as-good level to its vertex.
    auto levels = std::make_shared<std::vector<uint32_t>>(g.numVertices());
    AppSpec spec = specBfsAppSpec(g, 0, levels);

    // ---------------------------------- 2. debug in software (Sec. 4.4)
    // Definition 4.3's sequential reference...
    SequentialExecutor seq(spec);
    ExecStats seq_stats = seq.run();
    std::vector<uint32_t> reference = *levels;
    std::printf("sequential executor:    %llu tasks\n",
                static_cast<unsigned long long>(seq_stats.executed));

    // ...the deterministic aggressive-parallel executor...
    AppSpec spec2 = specBfsAppSpec(g, 0, levels);
    ParallelExecutor par(spec2, {8});
    ExecStats par_stats = par.run();
    std::printf("parallel executor (8w): %llu tasks, %llu squashed, "
                "%llu rule returns\n",
                static_cast<unsigned long long>(par_stats.executed),
                static_cast<unsigned long long>(par_stats.squashed),
                static_cast<unsigned long long>(par_stats.ruleReturns));
    APIR_ASSERT(*levels == reference, "parallel executor diverged");

    // ...and the std::thread/std::future runtime.
    AppSpec spec3 = specBfsAppSpec(g, 0, levels);
    ThreadedRuntime thr(spec3, {4});
    ExecStats thr_stats = thr.run();
    std::printf("threaded runtime (4t):  %llu tasks, %llu squashed\n",
                static_cast<unsigned long long>(thr_stats.executed),
                static_cast<unsigned long long>(thr_stats.squashed));
    APIR_ASSERT(*levels == reference, "threaded runtime diverged");

    // ------------------------- 3. synthesize and simulate (Section 5)
    // Map the graph into device memory, build the BDFG pipelines, and
    // run the generated accelerator cycle by cycle on HARP-like
    // hardware (200 MHz, 64 KB cache, 7 GB/s QPI).
    MemorySystem mem;
    BfsAccel accel_app = buildSpecBfs(g, 0, mem);

    AccelConfig cfg;
    cfg.pipelinesPerSet = 2;
    Accelerator accel(accel_app.spec, cfg, mem);
    RunResult rr = accel.run();

    APIR_ASSERT(readLevels(accel_app.img, mem) == reference,
                "accelerator diverged");
    std::printf("\naccelerator: %llu cycles (%.1f us at 200 MHz)\n",
                static_cast<unsigned long long>(rr.cycles),
                rr.seconds * 1e6);
    std::printf("  %llu tasks executed, %llu activated, %llu squashed\n",
                static_cast<unsigned long long>(rr.tasksExecuted),
                static_cast<unsigned long long>(rr.tasksActivated),
                static_cast<unsigned long long>(rr.squashed));
    std::printf("  pipeline utilization: %.1f%% over %zu primitive ops\n",
                100.0 * rr.utilization, accel.numStages());
    std::printf("\nall three runtimes and the accelerator agree with the "
                "sequential reference.\n");
    return 0;
}
